"""Lane-parallel fused engine: bit-identity, knob plumbing, pool composition.

The fused engine's fork lanes partition ``fork_order`` into contiguous
slices executed on a thread pool; per-slice results of the stacked GEMMs
are independent, so every ``lane_threads`` setting must produce
``tobytes()``-identical firing rates and therefore identical accuracy
records.  The knob must also compose with the fork-based worker pool: an
unset value inside a multi-worker runner stays at one lane per worker.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.datasets import DataLoader
from repro.faults import (
    CampaignPoint,
    CampaignRunner,
    build_faulty_array,
    evaluate_with_faults,
    evaluate_with_faults_batched,
    random_fault_map,
)
from repro.snn.inference import FusedFaultEngine, resolve_lane_threads
from repro.systolic import DEFAULT_ACCUMULATOR_FORMAT

FMT = DEFAULT_ACCUMULATOR_FORMAT


@pytest.fixture()
def test_loader(tiny_mnist_data):
    _, test = tiny_mnist_data
    return DataLoader(test, batch_size=50)


def _arrays(num_maps, counts=None, seed=0):
    counts = counts if counts is not None else [3] * num_maps
    return [
        build_faulty_array(
            random_fault_map(8, 8, counts[index], bit_position=None,
                             stuck_type=index % 2, seed=seed + index))
        for index in range(num_maps)
    ]


def _rates(model, arrays, frame, lane_threads):
    with FusedFaultEngine(model, arrays,
                          lane_threads=lane_threads) as engine:
        return engine.run(frame)


# ----------------------------------------------------------------------
# Bit identity across lane counts
# ----------------------------------------------------------------------
class TestLaneBitIdentity:
    def test_rates_byte_identical_at_1_2_4_threads(self, trained_tiny_model,
                                                   test_loader):
        frame, _ = next(iter(test_loader))
        arrays = _arrays(5, counts=[0, 1, 3, 5, 2])
        serial = _rates(trained_tiny_model, arrays, frame, 1)
        assert serial.dtype == np.float64
        for threads in (2, 4):
            parallel = _rates(trained_tiny_model, arrays, frame, threads)
            assert parallel.tobytes() == serial.tobytes()

    def test_more_lanes_than_forked_maps(self, trained_tiny_model, test_loader):
        """Lane count clamps to the forked-map count; extras change nothing."""

        frame, _ = next(iter(test_loader))
        arrays = _arrays(2, counts=[2, 4])
        serial = _rates(trained_tiny_model, arrays, frame, 1)
        wide = _rates(trained_tiny_model, arrays, frame, 16)
        assert wide.tobytes() == serial.tobytes()

    def test_accuracies_identical_across_lane_threads(self, trained_tiny_model,
                                                      test_loader):
        maps = [random_fault_map(8, 8, count, seed=7 + count)
                for count in (0, 2, 5)]
        serial = evaluate_with_faults_batched(trained_tiny_model, test_loader,
                                              fault_maps=maps, lane_threads=1)
        for threads in (2, 4):
            parallel = evaluate_with_faults_batched(
                trained_tiny_model, test_loader, fault_maps=maps,
                lane_threads=threads)
            assert parallel == serial

    @given(counts=st.lists(st.integers(0, 6), min_size=1, max_size=6),
           seed=st.integers(0, 2**16))
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_lane_partition_property(self, trained_tiny_model, tiny_mnist_data,
                                     counts, seed):
        """Any fault-map population splits into lanes without changing bits."""

        _, test = tiny_mnist_data
        frame = DataLoader(test, batch_size=10)
        inputs, _ = next(iter(frame))
        arrays = _arrays(len(counts), counts=counts, seed=seed)
        serial = _rates(trained_tiny_model, arrays, inputs, 1)
        parallel = _rates(trained_tiny_model, arrays, inputs, 3)
        assert parallel.tobytes() == serial.tobytes()


# ----------------------------------------------------------------------
# Knob resolution and validation
# ----------------------------------------------------------------------
class TestLaneKnob:
    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_LANE_THREADS", raising=False)
        assert resolve_lane_threads() == 1
        monkeypatch.setenv("REPRO_LANE_THREADS", "3")
        assert resolve_lane_threads() == 3
        assert resolve_lane_threads(2) == 2   # explicit beats env

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            resolve_lane_threads(-1)
        with pytest.raises(ValueError):
            resolve_lane_threads("nope")

    def test_zero_is_auto_sentinel(self, monkeypatch):
        assert resolve_lane_threads(0) == 0
        monkeypatch.setenv("REPRO_LANE_THREADS", "0")
        assert resolve_lane_threads() == 0

    def test_auto_sizes_from_forked_maps_and_cpus(self, trained_tiny_model,
                                                  test_loader, monkeypatch):
        """lane_threads=0 resolves to min(forked, cpu_count) at construction."""

        import os

        frame, _ = next(iter(test_loader))
        arrays = _arrays(3, counts=[2, 3, 4])
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        with FusedFaultEngine(trained_tiny_model, arrays,
                              lane_threads=0) as engine:
            assert engine.lane_threads == 2          # min(3 forked, 2 cpus)
            assert len(engine._lanes) == 2
            auto = engine.run(frame)
        serial = _rates(trained_tiny_model, arrays, frame, 1)
        assert auto.tobytes() == serial.tobytes()

    def test_auto_via_env(self, trained_tiny_model, test_loader, monkeypatch):
        frame, _ = next(iter(test_loader))
        arrays = _arrays(2, counts=[1, 2])
        monkeypatch.setenv("REPRO_LANE_THREADS", "0")
        with FusedFaultEngine(trained_tiny_model, arrays) as engine:
            assert 1 <= engine.lane_threads <= 2
            auto = engine.run(frame)
        monkeypatch.delenv("REPRO_LANE_THREADS")
        serial = _rates(trained_tiny_model, arrays, frame, 1)
        assert auto.tobytes() == serial.tobytes()

    def test_lane_threads_require_fused_engine(self, trained_tiny_model,
                                               test_loader):
        maps = [random_fault_map(8, 8, 2, seed=1)]
        with pytest.raises(ValueError, match="fused"):
            evaluate_with_faults_batched(trained_tiny_model, test_loader,
                                         fault_maps=maps, engine="batched",
                                         lane_threads=2)
        with pytest.raises(ValueError, match="fused"):
            evaluate_with_faults(trained_tiny_model, test_loader,
                                 fault_map=maps[0], engine="sequential",
                                 lane_threads=2)

    def test_runner_rejects_bad_lane_threads(self, trained_tiny_model,
                                             test_loader):
        with pytest.raises(ValueError):
            CampaignRunner(trained_tiny_model, test_loader, lane_threads=-1)
        with pytest.raises(ValueError):
            CampaignRunner(trained_tiny_model, test_loader, engine="batched",
                           lane_threads=2)

    def test_executor_lifecycle(self, trained_tiny_model, test_loader):
        frame, _ = next(iter(test_loader))
        engine = FusedFaultEngine(trained_tiny_model, _arrays(3),
                                  lane_threads=2)
        assert engine._executor is None      # lazily created
        engine.run(frame)
        assert engine._executor is not None
        engine.close()
        assert engine._executor is None
        engine.close()                       # idempotent


# ----------------------------------------------------------------------
# Composition with the fork-based worker pool
# ----------------------------------------------------------------------
class TestPoolComposition:
    POINTS = [CampaignPoint.for_trials(8, 8, count, trials=2, seed=41 + count)
              for count in (1, 4)]

    def test_unset_lane_threads_stay_serial_inside_pool(self, trained_tiny_model,
                                                        test_loader):
        pooled = CampaignRunner(trained_tiny_model, test_loader, workers=2)
        assert pooled._effective_lane_threads == 1
        serial = CampaignRunner(trained_tiny_model, test_loader)
        assert serial._effective_lane_threads is None

    def test_workers_times_lanes_byte_identical(self, trained_tiny_model,
                                                test_loader):
        """workers=2 x lane_threads=2 records equal the plain serial run."""

        serial = CampaignRunner(trained_tiny_model, test_loader).run(self.POINTS)
        composed = CampaignRunner(trained_tiny_model, test_loader, workers=2,
                                  lane_threads=2)
        assert composed._effective_lane_threads == 2
        assert composed.run(self.POINTS) == serial

    def test_lane_threads_alone_match_serial_records(self, trained_tiny_model,
                                                     test_loader):
        serial = CampaignRunner(trained_tiny_model, test_loader).run(self.POINTS)
        laned = CampaignRunner(trained_tiny_model, test_loader,
                               lane_threads=4).run(self.POINTS)
        assert laned == serial
