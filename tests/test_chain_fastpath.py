"""Fault-chain fast path: edge cases, bit-identity properties, plan cache.

The uniform-tile chain kernel (:mod:`repro.systolic.chain_kernel`) must be
``tobytes()``-identical to the untiled chunked reference
(:meth:`BatchedSystolicArray._apply_chain_plan_reference`) and therefore to
the sequential :meth:`SystolicArray.matmul` oracle, for every chain
structure: empty tables, single-site chains, the all-chains-one-level
degenerate case, ragged multi-level mixes, both gather strategies and the
chunked path.  The per-process :class:`PlanCache` must change *when* a
model is lowered, never the records.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import StuckAtFault, random_fault_map
from repro.snn.inference import PlanCache
from repro.systolic import (
    BatchedSystolicArray,
    DEFAULT_ACCUMULATOR_FORMAT,
    SystolicArray,
    chain_kernel,
)
from repro.systolic import array as systolic_array
from repro.systolic.chain_kernel import StuckAtKernel
from repro.utils.rng import get_rng

FMT = DEFAULT_ACCUMULATOR_FORMAT


@pytest.fixture(autouse=True)
def restore_chain_kernel_switches():
    fastpath = chain_kernel.FASTPATH_ENABLED
    threshold = chain_kernel.PER_CHAIN_GEMM_BATCH
    prefix = chain_kernel.PREFIX_BATCH_ENABLED
    yield
    chain_kernel.FASTPATH_ENABLED = fastpath
    chain_kernel.PER_CHAIN_GEMM_BATCH = threshold
    chain_kernel.PREFIX_BATCH_ENABLED = prefix


def run_both_paths(arrays, weight, inputs, bias=None):
    """(fast, reference) results of one batched matmul."""

    batched = BatchedSystolicArray(arrays)
    chain_kernel.FASTPATH_ENABLED = True
    fast = batched.matmul_batched(weight, inputs, bias=bias)
    chain_kernel.FASTPATH_ENABLED = False
    reference = batched.matmul_batched(weight, inputs, bias=bias)
    return fast, reference


# ----------------------------------------------------------------------
# Edge cases
# ----------------------------------------------------------------------
class TestChainEdgeCases:
    def test_empty_chain_table(self):
        """Fault-free maps build no chain plans; output is the dense GEMM."""

        rng = get_rng(0)
        arrays = [SystolicArray(6, 6) for _ in range(3)]
        batched = BatchedSystolicArray(arrays)
        weight = rng.normal(size=(8, 10))
        prepared = batched.prepare_weight(weight)
        assert prepared.chain_plans == []
        inputs = rng.normal(size=(3, 4, 10))
        fast, reference = run_both_paths(arrays, weight, inputs)
        assert fast.tobytes() == reference.tobytes()
        assert fast.tobytes() == np.matmul(inputs, weight.T).tobytes()

    def test_faults_outside_output_columns_build_no_chains(self):
        """Faults in columns holding no outputs produce an empty table."""

        array = SystolicArray(4, 8)
        array.inject_fault(1, 5, StuckAtFault(3, "sa1"))  # out_features < 6
        batched = BatchedSystolicArray([array])
        prepared = batched.prepare_weight(np.ones((3, 4)))
        assert prepared.chain_plans == []

    def test_single_site_chains(self):
        """One fault per column: every chain is one level plus a tail."""

        rng = get_rng(1)
        arrays = []
        for seed in range(4):
            fault_map = random_fault_map(5, 5, 3, bit_position=FMT.magnitude_msb,
                                         stuck_type="sa1", seed=seed)
            array = SystolicArray(5, 5)
            array.load_fault_map(fault_map)
            arrays.append(array)
        weight = rng.normal(size=(10, 12))
        inputs = rng.normal(size=(4, 3, 12))
        fast, reference = run_both_paths(arrays, weight, inputs)
        assert fast.tobytes() == reference.tobytes()
        for f, array in enumerate(arrays):
            assert np.array_equal(fast[f], array.matmul(weight, inputs[f]))

    def test_all_chains_share_one_level_uniform_degenerate(self):
        """Every chain with the same site count collapses into ONE group."""

        arrays = []
        for col in range(3):
            array = SystolicArray(4, 4)
            array.inject_fault(2, col, StuckAtFault(FMT.magnitude_msb, "sa1"))
            arrays.append(array)
        batched = BatchedSystolicArray(arrays)
        weight = get_rng(2).normal(size=(4, 4))
        prepared = batched.prepare_weight(weight)
        (plan,) = prepared.chain_plans
        assert len(plan.uniform.groups) == 1
        (group,) = plan.uniform.groups
        assert (group.start, group.end) == (0, 3)
        assert [len(tile.levels) for tile in group.tiles] == [1]

        inputs = get_rng(3).normal(size=(3, 2, 4))
        fast, reference = run_both_paths(arrays, weight, inputs)
        assert fast.tobytes() == reference.tobytes()

    def test_mixed_site_counts_split_into_uniform_groups(self):
        array = SystolicArray(6, 4)
        array.inject_fault(0, 0, StuckAtFault(3, "sa1"))
        array.inject_fault(0, 1, StuckAtFault(3, "sa1"))
        array.inject_fault(4, 1, StuckAtFault(5, "sa0"))
        batched = BatchedSystolicArray([array])
        prepared = batched.prepare_weight(get_rng(4).normal(size=(4, 6)))
        (plan,) = prepared.chain_plans
        signatures = sorted(
            tuple(len(tile.levels) for tile in group.tiles)
            for group in plan.uniform.groups)
        assert signatures == [(1,), (2,)]

    def test_site_row_beyond_tile_rows_is_tail_only(self):
        """A fault row >= in_features contributes no level, only the tail."""

        array = SystolicArray(6, 3)
        array.inject_fault(4, 0, StuckAtFault(FMT.magnitude_msb, "sa1"))
        weight = get_rng(5).normal(size=(3, 3))      # in_features=3 < row 4
        inputs = get_rng(6).normal(size=(1, 2, 3))
        fast, reference = run_both_paths([array], weight, inputs)
        assert fast.tobytes() == reference.tobytes()
        assert np.array_equal(fast[0], array.matmul(weight, inputs[0]))

    def test_chunked_fast_path_matches_unchunked(self, monkeypatch):
        rng = get_rng(7)
        arrays = []
        for seed in range(5):
            fault_map = random_fault_map(6, 6, 5, bit_position=None,
                                         stuck_type=seed % 2, seed=seed)
            array = SystolicArray(6, 6)
            array.load_fault_map(fault_map)
            arrays.append(array)
        weight = rng.normal(size=(9, 14))
        inputs = rng.normal(size=(5, 3, 14))
        chain_kernel.FASTPATH_ENABLED = True
        unchunked = BatchedSystolicArray(arrays).matmul_batched(weight, inputs)
        monkeypatch.setattr(systolic_array, "_CHAIN_BLOCK_ELEMENTS", 1)
        chunked = BatchedSystolicArray(arrays).matmul_batched(weight, inputs)
        assert unchunked.tobytes() == chunked.tobytes()

    def test_prefix_batching_matches_grouped_application(self):
        """Prefix-level runs and per-group application agree bit for bit."""

        rng = get_rng(9)
        arrays = []
        for seed in range(5):
            fault_map = random_fault_map(4, 6, int(rng.integers(0, 7)),
                                         bit_position=None,
                                         stuck_type=seed % 2, seed=seed)
            array = SystolicArray(4, 6)
            array.load_fault_map(fault_map)
            arrays.append(array)
        weight = rng.normal(size=(10, 13))      # multiple weight tiles
        for shared in (True, False):
            shape = (3, 13) if shared else (5, 3, 13)
            inputs = rng.normal(size=shape)
            chain_kernel.FASTPATH_ENABLED = True
            chain_kernel.PREFIX_BATCH_ENABLED = True
            prefix = BatchedSystolicArray(arrays).matmul_batched(weight, inputs)
            chain_kernel.PREFIX_BATCH_ENABLED = False
            grouped = BatchedSystolicArray(arrays).matmul_batched(weight, inputs)
            assert prefix.tobytes() == grouped.tobytes()

    def test_descending_sort_makes_full_tile_levels_prefixes(self):
        """Full tiles carry one run per level; groups sort by site count."""

        array = SystolicArray(4, 4)
        array.inject_fault(0, 0, StuckAtFault(3, "sa1"))
        array.inject_fault(2, 0, StuckAtFault(4, "sa0"))
        array.inject_fault(1, 1, StuckAtFault(3, "sa1"))
        batched = BatchedSystolicArray([array])
        prepared = batched.prepare_weight(get_rng(10).normal(size=(4, 9)))
        (plan,) = prepared.chain_plans
        uniform = plan.uniform
        signatures = [tuple(len(tile.levels) for tile in group.tiles)
                      for group in uniform.groups]
        assert signatures == sorted(signatures, reverse=True)
        # 9 input features on a 4-row array: tiles 0 and 1 are full, tile 2
        # is partial.  Full tiles must expose exactly one (prefix) run per
        # level, starting at chain 0.
        for tile in uniform.prefix_tiles[:2]:
            for runs in tile.levels:
                assert len(runs) == 1
                assert runs[0].start == 0
        # Group views alias the run stacks -- no duplicated segment memory.
        group = uniform.groups[0]
        run = uniform.prefix_tiles[0].levels[0][0]
        assert group.tiles[0].levels[0].w_stack.base is run.w_stack

    def test_per_chain_view_strategy_matches_stacked(self, monkeypatch):
        """Forcing the wide-batch strategy on tiny batches changes nothing."""

        rng = get_rng(8)
        arrays = []
        for seed in range(4):
            fault_map = random_fault_map(5, 7, 4, bit_position=None,
                                         stuck_type="sa1", seed=seed)
            array = SystolicArray(5, 7)
            array.load_fault_map(fault_map)
            arrays.append(array)
        weight = rng.normal(size=(12, 11))
        inputs = rng.normal(size=(4, 3, 11))
        chain_kernel.FASTPATH_ENABLED = True
        monkeypatch.setattr(chain_kernel, "PER_CHAIN_GEMM_BATCH", 10**9)
        stacked = BatchedSystolicArray(arrays).matmul_batched(weight, inputs)
        monkeypatch.setattr(chain_kernel, "PER_CHAIN_GEMM_BATCH", 1)
        by_view = BatchedSystolicArray(arrays).matmul_batched(weight, inputs)
        assert stacked.tobytes() == by_view.tobytes()


# ----------------------------------------------------------------------
# Fused stuck-at kernel
# ----------------------------------------------------------------------
class TestStuckAtKernel:
    @given(
        values=st.lists(st.floats(-400.0, 400.0, allow_nan=False), min_size=1,
                        max_size=32),
        bit=st.integers(0, FMT.total_bits - 1),
        stuck=st.integers(0, 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_force_matches_fixed_point_reference(self, values, bit, stuck):
        """The fused kernel equals FixedPointFormat.apply_stuck_at bit for bit."""

        block = np.array(values)[None, :, None].copy()
        expected = FMT.apply_stuck_at(block, bit, stuck)
        kernel = StuckAtKernel(FMT)
        bit_mask = np.left_shift(np.int64(1), np.array([bit]))[:, None, None]
        level = chain_kernel.LevelBlock(
            w_stack=np.zeros((1, 1, 1)), bit_mask=bit_mask,
            inv_mask=np.bitwise_not(bit_mask), stuck_one=None,
            all_sa1=stuck == 1, all_sa0=stuck == 0)
        raw = np.empty(block.shape, dtype=np.int64)
        forced = kernel.force(block, level, slice(0, 1), raw)
        assert forced.tobytes() == expected.tobytes()

    def test_mixed_polarity_level(self):
        """A level mixing sa0/sa1 chains takes the where-select branch."""

        values = np.array([[[5.5]], [[5.5]]])
        kernel = StuckAtKernel(FMT)
        bits = np.array([2, 2])
        bit_mask = np.left_shift(np.int64(1), bits)[:, None, None]
        stuck_one = np.array([True, False])[:, None, None]
        level = chain_kernel.LevelBlock(
            w_stack=np.zeros((2, 1, 1)), bit_mask=bit_mask,
            inv_mask=np.bitwise_not(bit_mask), stuck_one=stuck_one,
            all_sa1=False, all_sa0=False)
        raw = np.empty(values.shape, dtype=np.int64)
        forced = kernel.force(values.copy(), level, slice(0, 2), raw)
        assert forced[0, 0, 0] == FMT.apply_stuck_at(np.array(5.5), 2, 1)
        assert forced[1, 0, 0] == FMT.apply_stuck_at(np.array(5.5), 2, 0)


# ----------------------------------------------------------------------
# Hypothesis property: tiled output == untiled reference oracle
# ----------------------------------------------------------------------
@st.composite
def chain_scenarios(draw):
    rows = draw(st.integers(2, 8))
    cols = draw(st.integers(2, 8))
    out_features = draw(st.integers(1, 20))
    in_features = draw(st.integers(1, 24))
    batch = draw(st.integers(1, 4))
    num_maps = draw(st.integers(1, 4))
    shared = draw(st.booleans())
    bypass = draw(st.booleans())
    faults = draw(st.lists(st.integers(0, min(8, rows * cols)),
                           min_size=num_maps, max_size=num_maps))
    seed = draw(st.integers(0, 2**31 - 1))
    return (rows, cols, out_features, in_features, batch, num_maps, shared,
            bypass, faults, seed)


class TestTiledVsUntiledProperty:
    @given(scenario=chain_scenarios())
    @settings(max_examples=40, deadline=None)
    def test_tiled_output_tobytes_matches_untiled_reference(self, scenario):
        (rows, cols, out_features, in_features, batch, num_maps, shared,
         bypass, faults, seed) = scenario
        rng = get_rng(seed)
        arrays = []
        for map_index in range(num_maps):
            fault_map = random_fault_map(
                rows, cols, faults[map_index], bit_position=None,
                stuck_type=int(rng.integers(0, 2)),
                seed=int(rng.integers(0, 2**31)))
            array = SystolicArray(rows, cols)
            array.load_fault_map(fault_map)
            if bypass and map_index % 2:
                array.bypass_faulty_pes()
            arrays.append(array)
        weight = rng.normal(size=(out_features, in_features)) * 2
        shape = (batch, in_features) if shared else (num_maps, batch, in_features)
        inputs = rng.normal(size=shape)
        fast, reference = run_both_paths(arrays, weight, inputs)
        assert fast.tobytes() == reference.tobytes()
        # And both equal the sequential oracle per map.
        for f, array in enumerate(arrays):
            oracle = array.matmul(weight, inputs if shared else inputs[f])
            assert np.array_equal(fast[f], oracle)


# ----------------------------------------------------------------------
# Plan cache
# ----------------------------------------------------------------------
class TestPlanCache:
    def test_lowering_happens_once_per_content(self, trained_tiny_model):
        cache = PlanCache()
        first = cache.get_plan(trained_tiny_model)
        second = cache.get_plan(trained_tiny_model)
        assert first is second
        assert (cache.hits, cache.misses) == (1, 1)

    def test_token_shortcut_matches_hashing(self, trained_tiny_model):
        cache = PlanCache()
        token = cache.token_for(trained_tiny_model)
        plan = cache.get_plan(trained_tiny_model, token=token)
        assert cache.get_plan(trained_tiny_model) is plan

    def test_weight_mutation_changes_token_and_misses(self, trained_tiny_model):
        cache = PlanCache()
        cache.get_plan(trained_tiny_model)
        parameter = trained_tiny_model.parameters()[0]
        original = parameter.data.copy()
        try:
            parameter.data += 1.0
            cache.get_plan(trained_tiny_model)
        finally:
            parameter.data[...] = original
        assert cache.misses == 2
        assert len(cache) == 2

    def test_eviction_bound(self, trained_tiny_model):
        cache = PlanCache(max_entries=1)
        cache.get_plan(trained_tiny_model)
        parameter = trained_tiny_model.parameters()[0]
        original = parameter.data.copy()
        try:
            parameter.data += 1.0
            cache.get_plan(trained_tiny_model)
        finally:
            parameter.data[...] = original
        assert len(cache) == 1

    def test_invalid_max_entries_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(max_entries=0)

    def test_runner_records_identical_with_and_without_cache(
            self, trained_tiny_model, tiny_mnist_loaders):
        from repro.faults import CampaignPoint, CampaignRunner

        _, test_loader = tiny_mnist_loaders
        points = [CampaignPoint.for_trials(8, 8, count, trials=2, seed=31 + count)
                  for count in (1, 3)]
        cache = PlanCache()
        with_cache = CampaignRunner(trained_tiny_model, test_loader,
                                    plan_cache=cache).run(points)
        without = CampaignRunner(trained_tiny_model, test_loader,
                                 plan_cache=False).run(points)
        assert with_cache == without
        # The merged serial pass lowers exactly once; a later evaluation
        # (the fault-free baseline) hits the same entry.
        assert (cache.misses, cache.hits) == (1, 0)
        CampaignRunner(trained_tiny_model, test_loader,
                       plan_cache=cache).baseline_accuracy()
        assert (cache.misses, cache.hits) == (1, 1)

    def test_runner_defaults_to_process_cache(self, trained_tiny_model,
                                              tiny_mnist_loaders):
        from repro.faults import CampaignRunner
        from repro.snn.inference import default_plan_cache

        _, test_loader = tiny_mnist_loaders
        runner = CampaignRunner(trained_tiny_model, test_loader)
        assert runner.plan_cache is default_plan_cache()

    def test_warm_plan_cache_lowers_before_fork(self, trained_tiny_model,
                                                tiny_mnist_loaders):
        from repro.faults import CampaignRunner

        _, test_loader = tiny_mnist_loaders
        cache = PlanCache()
        runner = CampaignRunner(trained_tiny_model, test_loader,
                                plan_cache=cache)
        runner.warm_plan_cache()
        assert (len(cache), cache.misses) == (1, 1)
        runner.warm_plan_cache()
        assert cache.misses == 1

    def test_orchestrated_units_reuse_warmed_plan(self, trained_tiny_model,
                                                  tiny_mnist_loaders, tmp_path):
        """Chunked units hit the plan warmed before the pool starts."""

        from repro.faults import CampaignPoint, CampaignRunner

        _, test_loader = tiny_mnist_loaders
        points = [CampaignPoint.for_trials(8, 8, 2, trials=4, seed=77)]
        cache = PlanCache()
        records = CampaignRunner(trained_tiny_model, test_loader,
                                 plan_cache=cache, trial_chunk=2,
                                 cache_dir=tmp_path).run(points)
        assert cache.misses == 1          # warmed once, never re-lowered
        assert cache.hits >= 2            # one hit per trial-chunk unit
        plain = CampaignRunner(trained_tiny_model, test_loader,
                               plan_cache=False).run(points)
        assert records == plain
