"""Tests for the IF / LIF / PLIF neuron models and threshold handling."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.snn import IFNode, LIFNode, PLIFNode, MIN_THRESHOLD, spiking_nodes
from repro.snn.layers import Sequential, Linear


class TestIFNode:
    def test_integrates_until_threshold(self):
        node = IFNode(v_threshold=1.0)
        x = Tensor(np.array([[0.4]]))
        spikes = [node(x).data[0, 0] for _ in range(4)]
        # Membrane: 0.4, 0.8, 1.2 -> spike on the third step.
        assert spikes[:3] == [0.0, 0.0, 1.0]

    def test_hard_reset_returns_to_v_reset(self):
        node = IFNode(v_threshold=1.0, v_reset=0.0)
        x = Tensor(np.array([[1.5]]))
        node(x)
        assert node.v.data[0, 0] == pytest.approx(0.0)

    def test_soft_reset_subtracts_threshold(self):
        node = IFNode(v_threshold=1.0, v_reset=None)
        x = Tensor(np.array([[1.5]]))
        node(x)
        assert node.v.data[0, 0] == pytest.approx(0.5)

    def test_reset_state_clears_membrane(self):
        node = IFNode()
        node(Tensor(np.ones((2, 3))))
        assert node.v is not None
        node.reset_state()
        assert node.v is None

    def test_state_reinitialised_on_shape_change(self):
        node = IFNode()
        node(Tensor(np.ones((2, 3))))
        node(Tensor(np.ones((4, 3))))
        assert node.v.shape == (4, 3)


class TestLIFNode:
    def test_leak_pulls_towards_input(self):
        node = LIFNode(tau=2.0, v_threshold=10.0)
        x = Tensor(np.array([[1.0]]))
        node(x)
        v1 = node.v.data[0, 0]
        node(x)
        v2 = node.v.data[0, 0]
        assert v1 == pytest.approx(0.5)
        assert v2 == pytest.approx(0.75)

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            LIFNode(tau=0.5)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            LIFNode(v_threshold=0.0)


class TestPLIFNode:
    def test_initial_tau_matches(self):
        node = PLIFNode(init_tau=2.0)
        assert node.tau == pytest.approx(2.0, rel=1e-6)

    def test_invalid_init_tau(self):
        with pytest.raises(ValueError):
            PLIFNode(init_tau=1.0)

    def test_tau_parameter_is_learnable(self):
        node = PLIFNode(init_tau=2.0)
        x = Tensor(np.full((1, 4), 0.9))
        out = node(x)
        out.sum().backward()
        assert node.w.grad is not None

    def test_charging_uses_sigmoid_tau(self):
        node = PLIFNode(init_tau=2.0, v_threshold=100.0)
        node(Tensor(np.array([[1.0]])))
        assert node.v.data[0, 0] == pytest.approx(0.5, rel=1e-6)


class TestThresholdHandling:
    def test_fixed_threshold_reported(self):
        node = PLIFNode(v_threshold=0.7)
        assert node.v_threshold == pytest.approx(0.7)
        assert not node.learnable_threshold

    def test_set_threshold_fixed(self):
        node = PLIFNode(v_threshold=1.0)
        node.set_threshold(0.5)
        assert node.v_threshold == pytest.approx(0.5)

    def test_set_threshold_rejects_nonpositive(self):
        node = PLIFNode()
        with pytest.raises(ValueError):
            node.set_threshold(0.0)

    def test_make_threshold_learnable_adds_parameter(self):
        node = PLIFNode(v_threshold=1.0)
        before = len(node.parameters())
        node.make_threshold_learnable()
        assert len(node.parameters()) == before + 1
        assert node.learnable_threshold
        assert node.v_threshold == pytest.approx(1.0)

    def test_make_threshold_learnable_with_initial(self):
        node = PLIFNode(v_threshold=1.0)
        node.make_threshold_learnable(initial=0.6)
        assert node.v_threshold == pytest.approx(0.6)

    def test_make_learnable_idempotent(self):
        node = PLIFNode(learnable_threshold=True)
        node.make_threshold_learnable(initial=0.8)
        assert node.v_threshold == pytest.approx(0.8)
        assert len([p for p in node.parameters()]) == 2  # w and threshold

    def test_freeze_threshold_keeps_value(self):
        node = PLIFNode(v_threshold=1.0, learnable_threshold=True)
        node.v_threshold_param.data[...] = 0.55
        node.freeze_threshold()
        assert not node.learnable_threshold
        assert node.v_threshold == pytest.approx(0.55)
        assert "v_threshold_param" not in dict(node.named_parameters())

    def test_freeze_then_set(self):
        node = PLIFNode(learnable_threshold=True)
        node.freeze_threshold()
        node.set_threshold(0.9)
        assert node.v_threshold == pytest.approx(0.9)

    def test_threshold_gradient_flows(self):
        node = PLIFNode(v_threshold=1.0, learnable_threshold=True)
        x = Tensor(np.full((2, 5), 0.8))
        out = node(x)
        out.sum().backward()
        assert node.v_threshold_param.grad is not None
        # Raising the threshold can only reduce spiking: gradient of total
        # spike count w.r.t. V_th must be non-positive.
        assert node.v_threshold_param.grad <= 0.0

    def test_threshold_floor_applied(self):
        node = PLIFNode(v_threshold=1.0, learnable_threshold=True)
        node.v_threshold_param.data[...] = -3.0
        assert node.v_threshold == pytest.approx(MIN_THRESHOLD)

    def test_lower_threshold_fires_more(self):
        x = Tensor(np.full((1, 50), 0.5))
        high = PLIFNode(v_threshold=1.5)
        low = PLIFNode(v_threshold=0.3)
        high_count = sum(float(high(x).data.sum()) for _ in range(4))
        low_count = sum(float(low(x).data.sum()) for _ in range(4))
        assert low_count > high_count


class TestSpikingNodesHelper:
    def test_finds_nodes_in_container(self):
        seq = Sequential(Linear(4, 4, rng=np.random.default_rng(0)), PLIFNode(),
                         Linear(4, 2, rng=np.random.default_rng(1)), LIFNode())
        nodes = spiking_nodes(seq)
        assert len(nodes) == 2
        assert isinstance(nodes[0], PLIFNode)

    def test_layer_labels(self):
        node = PLIFNode(layer_label="Conv1")
        assert node.layer_label == "Conv1"
