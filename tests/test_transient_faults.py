"""Differential suite for the transient / weight-SRAM fault models.

Pins the batched and fused engines byte-identical (``tobytes``) to the
sequential per-schedule oracle under transient fault schedules, covers the
boundary cases of the step-resolved semantics (fault live only at the
first or last step, all steps == permanent stuck-at, empty schedule ==
clean), property-tests the rate-process generators with Hypothesis, and
freezes the campaign cache-key schema: the three fault models key
distinctly while pre-existing stuck-at keys are pinned by golden digests.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import DataLoader
from repro.faults import (
    FaultMap,
    FaultSchedule,
    SCHEDULE_PROCESSES,
    StuckAtFault,
    WeightSRAMFault,
    baseline_accuracy,
    bernoulli_schedule,
    burst_schedule,
    clustered_schedule,
    evaluate_with_faults,
    evaluate_with_faults_batched,
    evaluate_with_transient_faults,
    random_weight_fault_map,
    schedule_from_process,
    schedule_phases,
    transient_fault,
)
from repro.faults.injection import TRANSIENT_EVAL_ENGINES
from repro.systolic import DEFAULT_ACCUMULATOR_FORMAT, SystolicArray
from repro.systolic.array import apply_weight_faults
from repro.utils.rng import derive_seed

FMT = DEFAULT_ACCUMULATOR_FORMAT
ROWS = COLS = 16
#: The tiny test model runs 3 SNN time steps (see ``build_tiny_mnist_model``).
STEPS = 3


@pytest.fixture()
def test_loader(tiny_mnist_data):
    _, test = tiny_mnist_data
    return DataLoader(test, batch_size=50)


def _accuracy_bytes(accuracies) -> bytes:
    return np.asarray(accuracies, dtype=np.float64).tobytes()


def _schedules(process: str, trials: int = 2, num_faulty: int = 6):
    return [
        schedule_from_process(process, ROWS, COLS, num_faulty, STEPS,
                              fmt=FMT, seed=derive_seed(9, "tf", process, t))
        for t in range(trials)
    ]


def _single_site_schedule(active_steps, num_sites: int = 12) -> FaultSchedule:
    """MSB sa1 faults on a deterministic diagonal, live on ``active_steps``."""

    schedule = FaultSchedule(ROWS, COLS, STEPS, fmt=FMT)
    fault = transient_fault(FMT.magnitude_msb, "sa1", active_steps)
    for k in range(num_sites):
        schedule.add(k % ROWS, (3 * k) % COLS, fault)
    return schedule


class TestEngineByteIdentity:
    """Batched and fused engines are bit-equal to the sequential oracle."""

    @pytest.mark.parametrize("process", SCHEDULE_PROCESSES)
    def test_engines_byte_identical_per_process(self, trained_tiny_model,
                                                test_loader, process):
        schedules = _schedules(process)
        reference = evaluate_with_transient_faults(
            trained_tiny_model, test_loader, schedules, engine="sequential")
        for engine in ("batched", "fused"):
            accuracies = evaluate_with_transient_faults(
                trained_tiny_model, test_loader, schedules, engine=engine)
            assert _accuracy_bytes(accuracies) == _accuracy_bytes(reference), engine

    def test_unknown_engine_rejected(self, trained_tiny_model, test_loader):
        with pytest.raises(ValueError, match="sequential"):
            evaluate_with_transient_faults(
                trained_tiny_model, test_loader, _schedules("bernoulli"),
                engine="autograd")
        assert TRANSIENT_EVAL_ENGINES == ("fused", "batched", "sequential")

    def test_lane_threads_do_not_change_bytes(self, trained_tiny_model,
                                              test_loader):
        schedules = _schedules("bernoulli", trials=3)
        serial = evaluate_with_transient_faults(
            trained_tiny_model, test_loader, schedules, engine="fused")
        threaded = evaluate_with_transient_faults(
            trained_tiny_model, test_loader, schedules, engine="fused",
            lane_threads=2)
        assert _accuracy_bytes(serial) == _accuracy_bytes(threaded)

    def test_float32_runs_close_to_float64(self, trained_tiny_model,
                                           test_loader):
        schedules = _schedules("burst")
        exact = evaluate_with_transient_faults(
            trained_tiny_model, test_loader, schedules, engine="fused")
        relaxed = evaluate_with_transient_faults(
            trained_tiny_model, test_loader, schedules, engine="fused",
            dtype="float32")
        assert np.allclose(exact, relaxed, atol=0.1)


class TestStepSemantics:
    """Boundary behaviour of the per-step live-fault resolution."""

    def test_empty_schedule_is_bitwise_clean(self, trained_tiny_model,
                                             test_loader):
        clean = baseline_accuracy(trained_tiny_model, test_loader)
        empty = FaultSchedule(ROWS, COLS, STEPS, fmt=FMT)
        for engine in TRANSIENT_EVAL_ENGINES:
            accuracies = evaluate_with_transient_faults(
                trained_tiny_model, test_loader, [empty], engine=engine)
            assert accuracies == [clean], engine

    @pytest.mark.parametrize("active_steps", [(0,), (STEPS - 1,)],
                             ids=["first-step-only", "last-step-only"])
    def test_boundary_step_faults(self, trained_tiny_model, test_loader,
                                  active_steps):
        schedule = _single_site_schedule(active_steps)
        clean = baseline_accuracy(trained_tiny_model, test_loader)
        reference = evaluate_with_transient_faults(
            trained_tiny_model, test_loader, [schedule], engine="sequential")
        # The fault must actually fire on its single live step...
        assert reference[0] != clean
        # ...and every engine must agree bit-for-bit.
        for engine in ("batched", "fused"):
            accuracies = evaluate_with_transient_faults(
                trained_tiny_model, test_loader, [schedule], engine=engine)
            assert _accuracy_bytes(accuracies) == _accuracy_bytes(reference), engine

    def test_always_active_equals_permanent_stuck_at(self, trained_tiny_model,
                                                     test_loader):
        schedule = _single_site_schedule(tuple(range(STEPS)))
        permanent = schedule.union_map()
        stuck_accuracy = evaluate_with_faults(
            trained_tiny_model, test_loader, fault_map=permanent)
        for engine in TRANSIENT_EVAL_ENGINES:
            accuracies = evaluate_with_transient_faults(
                trained_tiny_model, test_loader, [schedule], engine=engine)
            assert accuracies == [stuck_accuracy], engine

    def test_model_overrunning_schedule_raises(self, trained_tiny_model,
                                               test_loader):
        short = FaultSchedule(ROWS, COLS, STEPS - 1, fmt=FMT)
        short.add(0, 0, transient_fault(FMT.magnitude_msb, "sa1", (0,)))
        for engine in TRANSIENT_EVAL_ENGINES:
            with pytest.raises(ValueError, match="step"):
                evaluate_with_transient_faults(
                    trained_tiny_model, test_loader, [short], engine=engine)


class TestWeightSRAMFaults:
    """The second new fault class: corrupted quantised weight tiles."""

    def test_matmul_equals_precorrupted_weights(self, rng):
        fault = WeightSRAMFault(bit_position=FMT.magnitude_msb, stuck_type="sa1")
        fault_map = FaultMap(8, 8, {(2, 5): fault, (6, 1): fault}, fmt=FMT)
        faulty = SystolicArray(8, 8, fmt=FMT)
        faulty.load_fault_map(fault_map)
        clean = SystolicArray(8, 8, fmt=FMT)
        activations = rng.normal(size=(4, 8)) * 0.5
        weights = rng.normal(size=(8, 8)) * 0.5
        corrupted = apply_weight_faults(weights, faulty.weight_fault_sites(),
                                        8, 8, FMT)
        assert not np.array_equal(corrupted, weights)
        assert np.array_equal(faulty.matmul(weights, activations),
                              clean.matmul(corrupted, activations))

    def test_sram_engines_byte_identical(self, trained_tiny_model, test_loader):
        maps = [random_weight_fault_map(ROWS, COLS, 6,
                                        bit_position=FMT.magnitude_msb,
                                        stuck_type="sa1", fmt=FMT, seed=s)
                for s in (21, 22)]
        sequential = [evaluate_with_faults(trained_tiny_model, test_loader,
                                           fault_map=fault_map)
                      for fault_map in maps]
        for engine in ("fused", "autograd"):
            accuracies = evaluate_with_faults_batched(
                trained_tiny_model, test_loader, maps, engine=engine)
            assert _accuracy_bytes(accuracies) == _accuracy_bytes(sequential), engine

    def test_sram_differs_from_datapath_stuck_at(self, trained_tiny_model,
                                                 test_loader):
        # Same sites, same bit, same polarity -- different physical fault
        # class must produce a different (deterministic) accuracy here.
        coords = [(1, 2), (4, 9), (7, 13), (11, 3), (13, 8), (15, 15)]
        bit = FMT.magnitude_msb
        datapath = FaultMap(ROWS, COLS, {c: StuckAtFault(bit, "sa1") for c in coords},
                            fmt=FMT)
        sram = FaultMap(ROWS, COLS, {c: WeightSRAMFault(bit, "sa1") for c in coords},
                        fmt=FMT)
        acc_datapath = evaluate_with_faults(trained_tiny_model, test_loader,
                                            fault_map=datapath)
        acc_sram = evaluate_with_faults(trained_tiny_model, test_loader,
                                        fault_map=sram)
        assert acc_datapath != acc_sram


class TestScheduleProperties:
    """Hypothesis property tests for the rate-process generators."""

    @given(process=st.sampled_from(SCHEDULE_PROCESSES),
           seed=st.integers(min_value=0, max_value=2**32 - 1),
           num_faulty=st.integers(min_value=0, max_value=8),
           num_steps=st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_generation_is_deterministic_in_seed(self, process, seed,
                                                 num_faulty, num_steps):
        first = schedule_from_process(process, 8, 8, num_faulty, num_steps,
                                      seed=seed)
        second = schedule_from_process(process, 8, 8, num_faulty, num_steps,
                                       seed=seed)
        assert first.faults == second.faults
        assert first.describe() == second.describe()

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           num_steps=st.integers(min_value=1, max_value=8),
           burst_length=st.integers(min_value=1, max_value=12))
    @settings(max_examples=40, deadline=None)
    def test_burst_windows_are_contiguous_and_bounded(self, seed, num_steps,
                                                      burst_length):
        schedule = burst_schedule(8, 8, 5, num_steps, burst_length, seed=seed)
        assert len(schedule) == 5
        for _, fault in schedule.items():
            steps = sorted(fault.active_steps)
            assert len(steps) == min(burst_length, num_steps)
            assert steps[0] >= 0 and steps[-1] < num_steps
            assert steps == list(range(steps[0], steps[0] + len(steps)))

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           rate=st.floats(min_value=0.0, max_value=1.0),
           num_steps=st.integers(min_value=1, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_bernoulli_sites_and_steps_in_range(self, seed, rate, num_steps):
        schedule = bernoulli_schedule(8, 8, 6, num_steps, rate, seed=seed)
        assert len(schedule) == 6
        for (row, col), fault in schedule.items():
            assert 0 <= row < 8 and 0 <= col < 8
            assert all(0 <= step < num_steps for step in fault.active_steps)
        if rate == 0.0:
            assert all(not fault.active_steps for _, fault in schedule.items())
        if rate == 1.0:
            assert all(len(fault.active_steps) == num_steps
                       for _, fault in schedule.items())

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           num_clusters=st.integers(min_value=0, max_value=4),
           cluster_size=st.integers(min_value=1, max_value=6),
           num_steps=st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_cluster_sizes_and_single_strike_step(self, seed, num_clusters,
                                                  cluster_size, num_steps):
        schedule = clustered_schedule(8, 8, num_clusters, num_steps,
                                      cluster_size=cluster_size, seed=seed)
        assert len(schedule) <= num_clusters * cluster_size
        for _, fault in schedule.items():
            assert len(fault.active_steps) == 1
            (step,) = fault.active_steps
            assert 0 <= step < num_steps

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           high_order_bits=st.integers(min_value=1, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_sampled_bits_stay_in_high_order_window(self, seed, high_order_bits):
        schedule = bernoulli_schedule(8, 8, 6, 4, 0.5, seed=seed,
                                      high_order_bits=high_order_bits)
        low = max(0, FMT.magnitude_msb - high_order_bits + 1)
        for _, fault in schedule.items():
            assert low <= fault.bit_position <= FMT.magnitude_msb

    def test_bit_validation_reuses_stuck_at_rules(self):
        with pytest.raises(ValueError):
            transient_fault(StuckAtFault.MAX_BIT_POSITION + 1, "sa1", (0,))
        with pytest.raises(ValueError):
            transient_fault(-1, "sa1", (0,))
        schedule = FaultSchedule(4, 4, 2, fmt=FMT)
        with pytest.raises(ValueError, match="accumulator format"):
            schedule.add(0, 0, transient_fault(FMT.total_bits, "sa1", (0,)))
        with pytest.raises(ValueError, match="active step"):
            schedule.add(0, 0, transient_fault(0, "sa1", (2,)))
        with pytest.raises(ValueError, match="outside"):
            schedule.add(4, 0, transient_fault(0, "sa1", (0,)))

    def test_phase_decomposition_shares_identical_steps(self):
        schedule = FaultSchedule(4, 4, 4, fmt=FMT)
        schedule.add(1, 1, transient_fault(3, "sa1", (0, 2)))
        step_phase, phase_maps = schedule_phases([schedule])
        assert step_phase == [0, 1, 0, 1]
        assert len(phase_maps) == 2
        assert len(phase_maps[0][0]) == 1 and len(phase_maps[1][0]) == 0


class TestCacheKeyRegression:
    """The three fault models key distinctly; stuck-at keys are historic."""

    #: Golden digests of the synthetic payloads below.  The stuck-at digest
    #: was computed with the pre-transient-model code and MUST NOT change:
    #: it pins that existing on-disk campaign caches stay valid.  The other
    #: two pin the extended key schema for the new fault classes.
    GOLDEN = {
        "stuck_at": "3f33e232a1e70fb80fb8fbb415782e7f67160825d4936a8d3290945f303ff5bb",
        "sram": "a5a843f69fa2bdc44c55a776f1b497dba219fc0965e092f1d921cfc012e91f6d",
        "transient": "a32c3ad05e6b202002b18a1058d1b76ff651b1952698acc90a004777bf647714",
    }

    @staticmethod
    def _points():
        from repro.faults.campaign import CampaignPoint

        common = dict(rows=16, cols=16, num_faulty=4, map_seeds=(101, 202),
                      bit_position=14, stuck_type="sa1", label="pe_count",
                      dataset="mnist")
        return {
            "stuck_at": CampaignPoint(**common),
            "sram": CampaignPoint(fault_model="sram", **common),
            "transient": CampaignPoint(
                fault_model="transient",
                fault_params={"process": "bernoulli", "num_steps": 3,
                              "rate": 0.5},
                **common),
        }

    @staticmethod
    def _digest(point):
        from repro.faults.campaign import _CACHE_VERSION, _digest_payload

        return _digest_payload({
            "version": _CACHE_VERSION,
            "model": "model-token-fixture",
            "data": "data-token-fixture",
            "fmt": [32, 8],
            "bypass": False,
            "point": point.as_payload(),
        })

    def test_fault_models_key_distinctly(self):
        digests = {name: self._digest(point)
                   for name, point in self._points().items()}
        assert len(set(digests.values())) == 3

    def test_golden_digests(self):
        for name, point in self._points().items():
            assert self._digest(point) == self.GOLDEN[name], name

    def test_stuck_at_payload_has_no_fault_model_key(self):
        # The historic key schema: stuck-at payloads must not even mention
        # the fault-model fields, or every existing cache entry would miss.
        payload = self._points()["stuck_at"].as_payload()
        assert "fault_model" not in payload
        assert "fault_params" not in payload

    def test_transient_payload_includes_params(self):
        payload = self._points()["transient"].as_payload()
        assert payload["fault_model"] == "transient"
        assert payload["fault_params"] == {"process": "bernoulli",
                                           "num_steps": 3, "rate": 0.5}
