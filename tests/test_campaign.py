"""Tests for the batched fault-injection campaign engine.

Covers: per-map equivalence of the batched evaluation with the sequential
reference, engine-identical sweep records, deterministic point seeding,
on-disk caching (including cache hits that skip simulation entirely) and the
optional worker pool.
"""

import numpy as np
import pytest

from repro.faults import (
    CampaignPoint,
    CampaignRunner,
    cached_record,
    evaluate_with_faults,
    evaluate_with_faults_batched,
    fault_maps_for_trials,
    map_grid,
    sweep_bit_locations,
    sweep_faulty_pe_count,
)
from repro.faults.campaign import loader_token, model_token
from repro.faults.injection import BatchedFaultInjector
from repro.systolic import BatchedSystolicArray, DEFAULT_ACCUMULATOR_FORMAT

FMT = DEFAULT_ACCUMULATOR_FORMAT


@pytest.fixture()
def eval_loader(tiny_mnist_loaders):
    return tiny_mnist_loaders[1]


class TestBatchedEvaluation:
    def test_matches_sequential_per_map(self, trained_tiny_model, eval_loader):
        maps = fault_maps_for_trials(16, 16, 4, 5, bit_position=FMT.magnitude_msb,
                                     stuck_type="sa1", seed=7)
        sequential = [evaluate_with_faults(trained_tiny_model, eval_loader, fault_map=m)
                      for m in maps]
        batched = evaluate_with_faults_batched(trained_tiny_model, eval_loader,
                                               fault_maps=maps)
        assert batched == sequential

    def test_bypass_matches_sequential(self, trained_tiny_model, eval_loader):
        maps = fault_maps_for_trials(16, 16, 6, 3, bit_position=FMT.magnitude_msb,
                                     stuck_type="sa1", seed=9)
        sequential = [evaluate_with_faults(trained_tiny_model, eval_loader,
                                           fault_map=m, bypass=True) for m in maps]
        batched = evaluate_with_faults_batched(trained_tiny_model, eval_loader,
                                               fault_maps=maps, bypass=True)
        assert batched == sequential

    def test_requires_maps_or_array(self, trained_tiny_model, eval_loader):
        with pytest.raises(ValueError):
            evaluate_with_faults_batched(trained_tiny_model, eval_loader)

    def test_injector_restores_forwards(self, trained_tiny_model):
        maps = fault_maps_for_trials(8, 8, 2, 2, seed=3)
        array = BatchedSystolicArray.from_fault_maps(maps)
        layers_before = [m.forward for m in trained_tiny_model.modules()]
        with BatchedFaultInjector(trained_tiny_model, array):
            pass
        layers_after = [m.forward for m in trained_tiny_model.modules()]
        assert layers_before == layers_after

    def test_no_target_layers_returns_software_accuracy(self, trained_tiny_model,
                                                        eval_loader):
        maps = fault_maps_for_trials(8, 8, 2, 3, seed=3)
        from repro.faults.analysis import baseline_accuracy

        accuracies = evaluate_with_faults_batched(
            trained_tiny_model, eval_loader, fault_maps=maps)
        # Sanity against an injector that routes nothing through the array.
        array = BatchedSystolicArray.from_fault_maps(maps)
        with BatchedFaultInjector(trained_tiny_model, array,
                                  layer_filter=lambda layer: False):
            pass
        clean = baseline_accuracy(trained_tiny_model, eval_loader)
        assert len(accuracies) == 3
        assert all(0.0 <= value <= 1.0 for value in accuracies)
        assert 0.0 <= clean <= 1.0


class TestCampaignPoint:
    def test_for_trials_matches_fault_maps_for_trials(self):
        point = CampaignPoint.for_trials(16, 16, 4, 3, bit_position=10,
                                         stuck_type="sa0", seed=11)
        expected = fault_maps_for_trials(16, 16, 4, 3, bit_position=10,
                                         stuck_type="sa0", seed=11)
        built = point.build_fault_maps(FMT)
        assert len(built) == 3
        for map_a, map_b in zip(built, expected):
            assert map_a.faults == map_b.faults

    def test_stuck_type_canonicalised(self):
        point = CampaignPoint(4, 4, 1, (1,), stuck_type=1)
        assert point.stuck_type == "sa1"

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignPoint(0, 4, 1, (1,))
        with pytest.raises(ValueError):
            CampaignPoint(2, 2, 5, (1,))
        with pytest.raises(ValueError):
            CampaignPoint(4, 4, 1, ())
        with pytest.raises(ValueError):
            CampaignPoint.for_trials(4, 4, 1, 0)

    def test_payload_round_trip(self):
        point = CampaignPoint(8, 8, 2, (5, 6), bit_position=3, stuck_type="sa0",
                              label="unit", dataset="mnist")
        payload = point.as_payload()
        assert payload["rows"] == 8 and payload["map_seeds"] == [5, 6]
        assert payload["bit_position"] == 3 and payload["stuck_type"] == "sa0"


class TestCampaignRunner:
    def make_points(self, trials=2):
        return [
            CampaignPoint.for_trials(16, 16, count, trials,
                                     bit_position=FMT.magnitude_msb,
                                     stuck_type="sa1", seed=50 + count,
                                     label="unit", dataset="mnist")
            for count in (2, 6)
        ]

    def test_engines_produce_identical_records(self, trained_tiny_model, eval_loader):
        points = self.make_points()
        batched = CampaignRunner(trained_tiny_model, eval_loader, engine="batched")
        sequential = CampaignRunner(trained_tiny_model, eval_loader, engine="sequential")
        assert batched.run(points) == sequential.run(points)

    def test_records_are_deterministic(self, trained_tiny_model, eval_loader):
        points = self.make_points()
        runner = CampaignRunner(trained_tiny_model, eval_loader)
        assert runner.run(points) == runner.run(points)

    def test_merged_pass_equals_point_at_a_time(self, trained_tiny_model, eval_loader):
        points = self.make_points()
        runner = CampaignRunner(trained_tiny_model, eval_loader)
        merged = runner.run(points)
        individual = [runner.evaluate_point(point) for point in points]
        assert merged == individual

    def test_unknown_engine_rejected(self, trained_tiny_model, eval_loader):
        with pytest.raises(ValueError):
            CampaignRunner(trained_tiny_model, eval_loader, engine="quantum")

    def test_cache_roundtrip_and_hit(self, trained_tiny_model, eval_loader, tmp_path):
        points = self.make_points()
        runner = CampaignRunner(trained_tiny_model, eval_loader, cache_dir=tmp_path)
        first = runner.run(points)
        assert len(list(tmp_path.glob("*.json"))) == len(points)

        # A second runner must answer entirely from the cache: break the
        # simulation path and verify records still come back identical.
        fresh = CampaignRunner(trained_tiny_model, eval_loader, cache_dir=tmp_path)

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("cache miss: simulation was invoked")

        fresh._evaluate_point = boom
        fresh._evaluate_points_merged = boom
        assert fresh.run(points) == first

    def test_cache_key_depends_on_model(self, trained_tiny_model, tiny_model,
                                        eval_loader, tmp_path):
        point = self.make_points()[0]
        trained = CampaignRunner(trained_tiny_model, eval_loader, cache_dir=tmp_path)
        untrained = CampaignRunner(tiny_model, eval_loader, cache_dir=tmp_path)
        trained.evaluate_point(point)
        untrained.evaluate_point(point)
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_worker_pool_matches_serial(self, trained_tiny_model, eval_loader):
        points = self.make_points(trials=1)
        serial = CampaignRunner(trained_tiny_model, eval_loader, workers=1)
        pooled = CampaignRunner(trained_tiny_model, eval_loader, workers=2)
        assert serial.run(points) == pooled.run(points)

    def test_baseline_accuracy_cached(self, trained_tiny_model, eval_loader):
        runner = CampaignRunner(trained_tiny_model, eval_loader)
        first = runner.baseline_accuracy()
        assert runner.baseline_accuracy() == first
        assert 0.0 <= first <= 1.0


class TestSweepEquivalence:
    def test_fig5b_sweep_records_identical(self, trained_tiny_model, eval_loader):
        kwargs = dict(rows=16, cols=16, counts=(0, 2, 6), trials=2, seed=5,
                      dataset="mnist")
        sequential = sweep_faulty_pe_count(trained_tiny_model, eval_loader,
                                           engine="sequential", **kwargs)
        batched = sweep_faulty_pe_count(trained_tiny_model, eval_loader,
                                        engine="batched", **kwargs)
        assert batched == sequential
        assert batched[0]["num_faulty_pes"] == 0
        assert batched[0]["accuracy_std"] == 0.0

    def test_fig5a_sweep_records_identical(self, trained_tiny_model, eval_loader):
        kwargs = dict(rows=16, cols=16, bit_positions=(0, FMT.magnitude_msb),
                      trials=2, seed=5, dataset="mnist")
        sequential = sweep_bit_locations(trained_tiny_model, eval_loader,
                                         engine="sequential", **kwargs)
        batched = sweep_bit_locations(trained_tiny_model, eval_loader,
                                      engine="batched", **kwargs)
        assert batched == sequential
        assert {record["stuck_type"] for record in batched} == {"sa0", "sa1"}


class TestHelpers:
    def test_map_grid_serial(self):
        assert map_grid(lambda x: x * 2, [1, 2, 3], workers=1) == [2, 4, 6]

    def test_map_grid_pool(self):
        assert map_grid(_double, [1, 2, 3], workers=2) == [2, 4, 6]

    def test_cached_record(self, tmp_path):
        calls = []

        def compute():
            calls.append(1)
            return {"value": 42}

        payload = {"key": "unit-test"}
        assert cached_record(tmp_path, payload, compute) == {"value": 42}
        assert cached_record(tmp_path, payload, compute) == {"value": 42}
        assert len(calls) == 1
        # No cache dir: compute every time.
        assert cached_record(None, payload, compute) == {"value": 42}
        assert len(calls) == 2

    def test_tokens_change_with_content(self, tiny_mnist_loaders, trained_tiny_model,
                                        tiny_model):
        train_loader, test_loader = tiny_mnist_loaders
        assert loader_token(test_loader) != loader_token(train_loader)
        assert model_token(trained_tiny_model) != model_token(tiny_model)


def _double(x):
    return x * 2


class TestCacheSelfHealing:
    """`cached_record` heals damaged entries instead of raising."""

    @staticmethod
    def _entry(cache_dir, payload):
        from repro.faults.campaign import _digest_payload

        return cache_dir / f"{_digest_payload(payload)}.json"

    def _prime(self, cache_dir, payload, calls):
        def compute():
            calls.append(1)
            return {"value": 42, "trials": 1}

        return cached_record(cache_dir, payload, compute,
                             required_keys=("value", "trials"))

    @pytest.mark.parametrize("damage", ["truncate", "garbage", "non-dict",
                                        "missing-key"])
    def test_damaged_entry_quarantined_and_recomputed(self, tmp_path, damage):
        calls = []
        payload = {"key": f"heal-{damage}"}
        self._prime(tmp_path, payload, calls)
        entry = self._entry(tmp_path, payload)
        if damage == "truncate":
            entry.write_bytes(entry.read_bytes()[: entry.stat().st_size // 2])
        elif damage == "garbage":
            entry.write_bytes(b"\x00\xff{{{not json")
        elif damage == "non-dict":
            entry.write_text("[1, 2, 3]")
        else:
            entry.write_text('{"value": 42}')  # parses, but lost "trials"

        events = []

        def compute():
            calls.append(1)
            return {"value": 42, "trials": 1}

        record = cached_record(tmp_path, payload, compute,
                               required_keys=("value", "trials"),
                               on_event=events.append)
        assert record == {"value": 42, "trials": 1}
        assert len(calls) == 2  # damaged hit recomputed
        assert [event["kind"] for event in events] == ["cache-corrupt"]
        sidecar = entry.with_name(entry.name + ".quarantined")
        assert sidecar.exists()  # damaged bytes kept for inspection
        # The healed entry is a clean hit again.
        assert cached_record(tmp_path, payload, compute,
                             required_keys=("value", "trials")) == record
        assert len(calls) == 2

    def test_load_cached_record_missing_path_is_a_miss(self, tmp_path):
        from repro.faults import load_cached_record

        assert load_cached_record(tmp_path / "absent.json") is None

    def test_store_failure_degrades_to_uncached(self, tmp_path, monkeypatch):
        import errno
        import os as _os

        from repro.faults import store_record_safe

        def full_disk(*args, **kwargs):
            raise OSError(errno.ENOSPC, "no space left on device")

        monkeypatch.setattr(_os, "replace", full_disk)
        events = []
        path = tmp_path / "record.json"
        assert store_record_safe({"value": 1}, path,
                                 on_event=events.append) is False
        assert not path.exists()
        assert [event["kind"] for event in events] == ["store-degraded"]
        assert not list(tmp_path.glob("*.tmp*"))  # staged temp cleaned up

    def test_store_record_safe_success_round_trips(self, tmp_path):
        from repro.faults import load_cached_record, store_record_safe

        path = tmp_path / "record.json"
        assert store_record_safe({"value": 3, "trials": 1}, path) is True
        assert load_cached_record(path, required_keys=("value",)) \
            == {"value": 3, "trials": 1}
