"""Tests for the deterministic chaos harness and the guarantees it proves.

Covers: plan construction (specs, env installation, seeded sampling),
per-action firing semantics (slow / raise / corrupt / enospc and the
cross-process ``once`` markers), cache-store injection through
``cached_record``, and the tentpole acceptance sweep -- an injected
permanently-hung worker, an injected crash and a pre-corrupted cache entry,
after which the records must be byte-identical to a clean serial run and
the ``SweepReport`` must attribute every failure to its taxonomy class.
"""

import errno
import json
import multiprocessing
import os

import pytest

from repro.faults import CampaignOrchestrator, CampaignRunner, CampaignPoint
from repro.testing import (
    CHAOS_ENV_VAR,
    ChaosError,
    ChaosPlan,
    ChaosRule,
    active_plan,
    clear_plan,
    install_plan,
)
from repro.systolic import DEFAULT_ACCUMULATOR_FORMAT

FMT = DEFAULT_ACCUMULATOR_FORMAT


def canonical(records) -> bytes:
    return json.dumps(records, sort_keys=True).encode("utf-8")


def make_points(trials=2, counts=(2, 4, 6)):
    return [
        CampaignPoint.for_trials(16, 16, count, trials,
                                 bit_position=FMT.magnitude_msb,
                                 stuck_type="sa1", seed=40 + count,
                                 label="pe_count", dataset="mnist")
        for count in counts
    ]


@pytest.fixture(autouse=True)
def no_leaked_plan():
    """Every test starts and ends without a process-wide chaos plan."""

    clear_plan()
    yield
    clear_plan()


@pytest.fixture()
def eval_loader(tiny_mnist_loaders):
    return tiny_mnist_loaders[1]


@pytest.fixture(scope="module")
def serial_records(trained_tiny_model_state, tiny_mnist_loaders):
    """Clean single-process records of ``make_points()`` (the oracle)."""

    from conftest import build_tiny_mnist_model

    model, _ = build_tiny_mnist_model()
    model.load_state_dict(trained_tiny_model_state["state"])
    return CampaignRunner(model, tiny_mnist_loaders[1]).run(make_points())


class TestChaosRule:
    def test_rejects_unknown_site_and_action(self):
        with pytest.raises(ValueError, match="site"):
            ChaosRule(site="nope", action="hang")
        with pytest.raises(ValueError, match="not valid"):
            ChaosRule(site="unit", action="corrupt")
        with pytest.raises(ValueError, match="corrupt mode"):
            ChaosRule(site="cache-store", action="corrupt", mode="nibble")

    def test_unit_keys_match_exact_ordinal(self):
        rule = ChaosRule(site="unit", action="slow", key=3)
        assert rule.matches("unit", 3)
        assert not rule.matches("unit", 2)
        assert not rule.matches("cache-store", 3)
        assert ChaosRule(site="unit", action="slow").matches("unit", 7)

    def test_cache_store_keys_match_substring(self):
        rule = ChaosRule(site="cache-store", action="enospc", key="abc1")
        assert rule.matches("cache-store", "deadabc123.json")
        assert not rule.matches("cache-store", "other.json")


class TestChaosPlanSpec:
    def test_round_trips_through_payload(self, tmp_path):
        plan = ChaosPlan(
            [ChaosRule(site="unit", action="crash", key=2),
             ChaosRule(site="cache-store", action="corrupt", mode="garbage")],
            state_dir=tmp_path / "state", hang_seconds=12.0)
        rebuilt = ChaosPlan.from_spec(plan.as_payload())
        assert rebuilt.rules == plan.rules
        assert rebuilt.state_dir == plan.state_dir
        assert rebuilt.hang_seconds == 12.0
        # And through the inline-JSON form used by $REPRO_CHAOS.
        again = ChaosPlan.from_spec(json.dumps(plan.as_payload()))
        assert again.rules == plan.rules

    def test_from_spec_reads_at_file(self, tmp_path):
        spec_path = tmp_path / "plan.json"
        spec_path.write_text(json.dumps({
            "rules": [{"site": "unit", "action": "raise", "key": 0}],
            "state_dir": str(tmp_path / "state"),
        }))
        plan = ChaosPlan.from_spec(f"@{spec_path}")
        assert plan.rules[0].action == "raise"

    def test_from_spec_rejects_rule_less_payload(self):
        with pytest.raises(ValueError, match="rules"):
            ChaosPlan.from_spec({"state_dir": "/tmp/x"})

    def test_sample_is_seed_deterministic_with_distinct_victims(self, tmp_path):
        kwargs = dict(hangs=1, crashes=1, raises=2, corrupt_stores=1)
        one = ChaosPlan.sample(7, range(10), state_dir=tmp_path / "a", **kwargs)
        two = ChaosPlan.sample(7, range(10), state_dir=tmp_path / "b", **kwargs)
        assert [r.as_payload() for r in one.rules] == [r.as_payload()
                                                       for r in two.rules]
        victims = [rule.key for rule in one.rules if rule.site == "unit"]
        assert len(victims) == len(set(victims)) == 4
        other = ChaosPlan.sample(8, range(10), state_dir=tmp_path / "c", **kwargs)
        assert ([r.as_payload() for r in other.rules]
                != [r.as_payload() for r in one.rules])

    def test_sample_rejects_more_victims_than_units(self):
        with pytest.raises(ValueError, match="distinct victim"):
            ChaosPlan.sample(0, [0, 1], hangs=3)

    def test_env_installs_plan_once_per_process(self, monkeypatch, tmp_path):
        spec = {"rules": [{"site": "unit", "action": "slow", "seconds": 0.0}],
                "state_dir": str(tmp_path / "state")}
        monkeypatch.setenv(CHAOS_ENV_VAR, json.dumps(spec))
        clear_plan()
        plan = active_plan()
        assert plan is not None and plan.rules[0].action == "slow"
        # Resolved once: the same object comes back on later consults.
        assert active_plan() is plan

    def test_unparsable_env_spec_is_a_hard_error(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV_VAR, "{not json")
        clear_plan()
        with pytest.raises(json.JSONDecodeError):
            active_plan()

    def test_install_and_clear(self, tmp_path):
        plan = install_plan({"rules": [], "state_dir": str(tmp_path / "s")})
        assert active_plan() is plan
        install_plan(None)
        assert active_plan() is None


class TestChaosActions:
    def test_raise_fires_once_then_stays_claimed(self, tmp_path):
        plan = ChaosPlan([ChaosRule(site="unit", action="raise", key=0)],
                         state_dir=tmp_path / "state")
        with pytest.raises(ChaosError):
            plan.consult("unit", key=0)
        plan.consult("unit", key=0)  # claimed: must not fire again
        assert len(plan.fired()) == 1
        plan.reset()
        with pytest.raises(ChaosError):
            plan.consult("unit", key=0)

    def test_repeatable_rule_fires_every_time(self, tmp_path):
        plan = ChaosPlan(
            [ChaosRule(site="unit", action="raise", key=0, once=False)],
            state_dir=tmp_path / "state")
        for _ in range(2):
            with pytest.raises(ChaosError):
                plan.consult("unit", key=0)
        assert plan.fired() == []  # repeatable rules leave no markers

    def test_once_marker_spans_forked_processes(self, tmp_path):
        plan = ChaosPlan([ChaosRule(site="unit", action="raise", key=0)],
                         state_dir=tmp_path / "state")
        context = multiprocessing.get_context("fork")

        def child():
            try:
                plan.consult("unit", key=0)
            except ChaosError:
                os._exit(1)  # the child claimed the rule
            os._exit(0)

        process = context.Process(target=child)
        process.start()
        process.join()
        assert process.exitcode == 1
        plan.consult("unit", key=0)  # already claimed by the child: no fire

    def test_slow_sleeps_bounded(self, tmp_path):
        import time

        plan = ChaosPlan(
            [ChaosRule(site="unit", action="slow", key=0, seconds=0.05)],
            state_dir=tmp_path / "state")
        start = time.monotonic()
        plan.consult("unit", key=0)
        assert time.monotonic() - start >= 0.05

    def test_enospc_raises_oserror(self, tmp_path):
        plan = ChaosPlan([ChaosRule(site="cache-store", action="enospc")],
                         state_dir=tmp_path / "state")
        with pytest.raises(OSError) as excinfo:
            plan.consult("cache-store", key="anything.json")
        assert excinfo.value.errno == errno.ENOSPC

    @pytest.mark.parametrize("mode", ["truncate", "garbage"])
    def test_corrupt_damages_staged_file(self, tmp_path, mode):
        staged = tmp_path / "record.json.tmp1"
        staged.write_text(json.dumps({"accuracies": [1.0], "trials": 1}))
        plan = ChaosPlan(
            [ChaosRule(site="cache-store", action="corrupt", mode=mode)],
            state_dir=tmp_path / "state")
        plan.consult("cache-store", key="record.json", path=staged)
        with pytest.raises((json.JSONDecodeError, UnicodeDecodeError)):
            json.loads(staged.read_text())


class TestCacheStoreChaos:
    def test_enospc_store_degrades_to_uncached(self, tmp_path):
        from repro.faults import cached_record

        install_plan({"rules": [{"site": "cache-store", "action": "enospc"}],
                      "state_dir": str(tmp_path / "state")})
        events = []
        calls = []
        payload = {"key": "enospc"}
        compute = lambda: calls.append(1) or {"value": 7}  # noqa: E731
        record = cached_record(tmp_path / "cache", payload, compute,
                               on_event=events.append)
        assert record == {"value": 7}
        assert [e["kind"] for e in events] == ["store-degraded"]
        assert not list((tmp_path / "cache").glob("*.json"))
        # The rule is claimed, so the next call stores (and caches) fine.
        assert cached_record(tmp_path / "cache", payload, compute) == {"value": 7}
        assert len(calls) == 2
        assert cached_record(tmp_path / "cache", payload, compute) == {"value": 7}
        assert len(calls) == 2  # third call was a clean cache hit

    def test_corrupt_store_quarantines_on_next_read(self, tmp_path):
        from repro.faults import cached_record

        install_plan({"rules": [{"site": "cache-store", "action": "corrupt",
                                 "mode": "garbage"}],
                      "state_dir": str(tmp_path / "state")})
        events = []
        calls = []
        payload = {"key": "corrupt"}
        compute = lambda: calls.append(1) or {"value": 9}  # noqa: E731
        cache = tmp_path / "cache"
        assert cached_record(cache, payload, compute,
                             on_event=events.append) == {"value": 9}
        # The store landed garbled bytes; the next lookup must quarantine
        # the entry and recompute instead of raising.
        assert cached_record(cache, payload, compute,
                             on_event=events.append) == {"value": 9}
        assert len(calls) == 2
        assert [e["kind"] for e in events] == ["cache-corrupt"]
        assert list(cache.glob("*.quarantined"))


class TestChaosSweepIdentity:
    def test_hang_crash_and_corrupt_cache_sweep_is_byte_identical(
            self, trained_tiny_model, eval_loader, serial_records, tmp_path):
        """The ISSUE's acceptance sweep.

        One cache entry is pre-corrupted on disk; the unit that recomputes
        it first hangs (watchdog kill), then crashes, then succeeds.  The
        sweep must finish on its own, reproduce the clean serial records
        byte-for-byte, and attribute each failure to its taxonomy class.
        """

        points = make_points()
        cache = tmp_path / "cache"
        CampaignRunner(trained_tiny_model, eval_loader, cache_dir=cache).run(points)
        entries = sorted(cache.glob("*.json"))
        assert len(entries) == 3

        # Corrupt the cached records of points 1 and 2: the orchestrator
        # pre-scan quarantines both, leaving unit ordinals 1 and 2 to
        # recompute (two units keep the sweep on the real process pool --
        # the inline fallback could not survive an injected crash).
        runner = CampaignRunner(trained_tiny_model, eval_loader, cache_dir=cache)
        orchestrator = CampaignOrchestrator(runner, workers=2, unit_timeout=8.0,
                                            retry_backoff=0.05)
        for victim_point in (points[1], points[2]):
            victim = orchestrator._point_path(victim_point)
            victim.write_bytes(victim.read_bytes()[: victim.stat().st_size // 2])

        install_plan({
            "rules": [
                {"site": "unit", "action": "hang", "key": 1},
                {"site": "unit", "action": "crash", "key": 1},
            ],
            "state_dir": str(tmp_path / "chaos-state"),
            "hang_seconds": 120.0,
        })

        result = orchestrator.run(points)
        assert result.complete
        assert canonical(result.records) == canonical(serial_records)
        report = result.report
        assert report.cache_corrupt == 2
        assert report.hung == 1
        assert report.crashed == 1
        assert report.quarantined == []
        assert report.retries >= 2
        kinds = {event["kind"] for event in report.events}
        assert {"cache-corrupt", "worker-hung", "worker-crash"} <= kinds
        assert len(list(cache.glob("*.quarantined"))) == 2
        summary = report.summary()
        assert (summary["hung"], summary["crashed"], summary["cache_corrupt"]) \
            == (1, 1, 2)

    def test_seeded_raise_plan_only_adds_retries(
            self, trained_tiny_model, eval_loader, serial_records, tmp_path):
        """A sampled poison mix perturbs scheduling, never the records."""

        plan = ChaosPlan.sample(11, [0, 1, 2], raises=2, seconds=0.0,
                                state_dir=tmp_path / "chaos-state")
        install_plan(plan)
        runner = CampaignRunner(trained_tiny_model, eval_loader)
        orchestrator = CampaignOrchestrator(runner, workers=2,
                                            retry_backoff=0.05)
        result = orchestrator.run(make_points())
        assert canonical(result.records) == canonical(serial_records)
        assert result.report.poisoned == 2
        assert result.report.retries == 2
