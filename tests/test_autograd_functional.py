"""Tests for the NN primitives (conv, pooling, batch-norm, dropout, softmax)."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    avg_pool2d,
    batch_norm,
    check_gradients,
    col2im,
    conv2d,
    dropout,
    im2col,
    linear,
    log_softmax,
    max_pool2d,
    one_hot,
    softmax,
)
from repro.autograd.functional import Function, _conv_output_size


def reference_conv2d(x, w, b, stride, padding):
    """Direct (slow) convolution used as ground truth."""

    batch, in_c, h, width = x.shape
    out_c, _, kh, kw = w.shape
    oh = _conv_output_size(h, kh, stride, padding)
    ow = _conv_output_size(width, kw, stride, padding)
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.zeros((batch, out_c, oh, ow))
    for n in range(batch):
        for o in range(out_c):
            for i in range(oh):
                for j in range(ow):
                    patch = xp[n, :, i * stride:i * stride + kh, j * stride:j * stride + kw]
                    out[n, o, i, j] = np.sum(patch * w[o])
            if b is not None:
                out[n, o] += b[o]
    return out


class TestLinear:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(5, 4)))
        w = Tensor(rng.normal(size=(3, 4)))
        b = Tensor(rng.normal(size=3))
        out = linear(x, w, b)
        assert np.allclose(out.data, x.data @ w.data.T + b.data)

    def test_gradcheck(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=2), requires_grad=True)
        check_gradients(lambda a, c, d: linear(a, c, d), [x, w, b])

    def test_no_bias(self):
        x = Tensor(np.ones((2, 3)))
        w = Tensor(np.ones((4, 3)))
        assert np.allclose(linear(x, w).data, 3.0)


class TestIm2Col:
    def test_shapes(self):
        x = np.random.default_rng(0).normal(size=(2, 3, 8, 8))
        cols = im2col(x, (3, 3), stride=1, padding=1)
        assert cols.shape == (2, 8, 8, 27)

    def test_stride_two(self):
        x = np.random.default_rng(0).normal(size=(1, 1, 8, 8))
        cols = im2col(x, (2, 2), stride=2, padding=0)
        assert cols.shape == (1, 4, 4, 4)

    def test_values_against_manual_patch(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        cols = im2col(x, (2, 2), stride=1, padding=0)
        assert np.allclose(cols[0, 0, 0], [0, 1, 4, 5])
        assert np.allclose(cols[0, 2, 2], [10, 11, 14, 15])

    def test_col2im_adjoint_property(self):
        # <im2col(x), y> == <x, col2im(y)> (the operators are adjoint).
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 3, 6, 6))
        cols = im2col(x, (3, 3), stride=1, padding=1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, (3, 3), 1, 1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_matches_reference(self, stride, padding):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        out = conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        expected = reference_conv2d(x, w, b, stride, padding)
        assert np.allclose(out.data, expected)

    def test_gradcheck_small(self):
        rng = np.random.default_rng(5)
        x = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=3), requires_grad=True)
        check_gradients(lambda a, c, d: conv2d(a, c, d, padding=1), [x, w, b])

    def test_no_bias_gradcheck(self):
        rng = np.random.default_rng(6)
        x = Tensor(rng.normal(size=(1, 1, 4, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 1, 2, 2)), requires_grad=True)
        check_gradients(lambda a, c: conv2d(a, c, stride=2), [x, w])

    def test_output_shape(self):
        x = Tensor(np.zeros((2, 3, 16, 16)))
        w = Tensor(np.zeros((8, 3, 3, 3)))
        assert conv2d(x, w, padding=1).shape == (2, 8, 16, 16)


class TestPooling:
    def test_avg_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = avg_pool2d(x, 2)
        assert out.shape == (1, 1, 2, 2)
        assert np.allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_gradcheck(self):
        x = Tensor(np.random.default_rng(0).normal(size=(2, 2, 4, 4)), requires_grad=True)
        check_gradients(lambda t: avg_pool2d(t, 2), [x])

    def test_avg_pool_rejects_indivisible(self):
        with pytest.raises(ValueError):
            avg_pool2d(Tensor(np.zeros((1, 1, 5, 5))), 2)

    def test_max_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = max_pool2d(x, 2)
        assert np.allclose(out.data[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_max_pool_gradient_to_max_only(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        max_pool2d(x, 2).sum().backward()
        assert x.grad.sum() == pytest.approx(4.0)
        assert x.grad[0, 0, 1, 1] == pytest.approx(1.0)
        assert x.grad[0, 0, 0, 0] == pytest.approx(0.0)

    def test_max_pool_rejects_indivisible(self):
        with pytest.raises(ValueError):
            max_pool2d(Tensor(np.zeros((1, 1, 6, 5))), 4)


class TestBatchNorm:
    def test_training_normalises(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(3.0, 2.0, size=(16, 4, 5, 5)))
        gamma = Tensor(np.ones(4))
        beta = Tensor(np.zeros(4))
        running_mean = np.zeros(4)
        running_var = np.ones(4)
        out = batch_norm(x, gamma, beta, running_mean, running_var, training=True)
        assert abs(out.data.mean()) < 1e-6
        assert out.data.std() == pytest.approx(1.0, abs=1e-2)

    def test_running_stats_updated(self):
        x = Tensor(np.random.default_rng(0).normal(2.0, 1.0, size=(8, 3, 4, 4)))
        running_mean = np.zeros(3)
        running_var = np.ones(3)
        batch_norm(x, Tensor(np.ones(3)), Tensor(np.zeros(3)), running_mean, running_var,
                   training=True, momentum=0.5)
        assert np.all(running_mean > 0.5)

    def test_eval_uses_running_stats(self):
        x = Tensor(np.full((4, 2, 3, 3), 10.0))
        running_mean = np.full(2, 10.0)
        running_var = np.ones(2)
        out = batch_norm(x, Tensor(np.ones(2)), Tensor(np.zeros(2)),
                         running_mean, running_var, training=False)
        assert np.allclose(out.data, 0.0, atol=1e-2)

    def test_2d_input(self):
        x = Tensor(np.random.default_rng(1).normal(size=(10, 6)))
        out = batch_norm(x, Tensor(np.ones(6)), Tensor(np.zeros(6)),
                         np.zeros(6), np.ones(6), training=True)
        assert out.shape == (10, 6)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            batch_norm(Tensor(np.zeros((2, 3, 4))), Tensor(np.ones(3)), Tensor(np.zeros(3)),
                       np.zeros(3), np.ones(3), training=True)

    def test_gradcheck(self):
        rng = np.random.default_rng(7)
        x = Tensor(rng.normal(size=(4, 2, 3, 3)), requires_grad=True)
        gamma = Tensor(rng.normal(size=2) + 1.0, requires_grad=True)
        beta = Tensor(rng.normal(size=2), requires_grad=True)

        def fn(a, g, b):
            return batch_norm(a, g, b, np.zeros(2), np.ones(2), training=True)

        check_gradients(fn, [x, gamma, beta], atol=1e-3)


class TestDropoutSoftmax:
    def test_dropout_eval_is_identity(self):
        x = Tensor(np.ones((5, 5)))
        out = dropout(x, 0.5, training=False, rng=np.random.default_rng(0))
        assert out is x

    def test_dropout_scales_kept_units(self):
        x = Tensor(np.ones((200, 200)))
        out = dropout(x, 0.5, training=True, rng=np.random.default_rng(0))
        kept = out.data[out.data > 0]
        assert np.allclose(kept, 2.0)
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            dropout(Tensor(np.ones(3)), 1.5, training=True, rng=np.random.default_rng(0))

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(6, 10)))
        probs = softmax(x, axis=1)
        assert np.allclose(probs.data.sum(axis=1), 1.0)

    def test_log_softmax_consistency(self):
        x = Tensor(np.random.default_rng(1).normal(size=(4, 7)))
        assert np.allclose(log_softmax(x).data, np.log(softmax(x).data))

    def test_softmax_gradcheck(self):
        x = Tensor(np.random.default_rng(2).normal(size=(3, 5)), requires_grad=True)
        check_gradients(lambda t: softmax(t, axis=1) * Tensor(np.arange(5.0)), [x])

    def test_one_hot(self):
        enc = one_hot(np.array([0, 2, 1]), 3)
        assert enc.shape == (3, 3)
        assert np.allclose(enc, [[1, 0, 0], [0, 0, 1], [0, 1, 0]])

    def test_one_hot_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)

    def test_one_hot_requires_1d(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2), dtype=int), 3)


class TestFunctionBase:
    def test_custom_function_backward(self):
        class Square(Function):
            @staticmethod
            def forward(ctx, x):
                ctx["x"] = x
                return x ** 2

            @staticmethod
            def backward(ctx, grad):
                return (2.0 * ctx["x"] * grad,)

        x = Tensor(np.array([3.0, -2.0]), requires_grad=True)
        Square.apply(x).sum().backward()
        assert np.allclose(x.grad, [6.0, -4.0])

    def test_base_function_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Function.forward({}, np.zeros(1))
        with pytest.raises(NotImplementedError):
            Function.backward({}, np.zeros(1))
