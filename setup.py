"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so the package can be installed editable in offline environments whose
setuptools lacks the ``wheel`` backend required by PEP 660 editable installs
(``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import setup

setup()
